// Package vec provides exact integer vector arithmetic over N^d and Z^d,
// the pointwise partial order used throughout the paper, congruence classes
// of Z^d modulo a period p, and helpers related to Dickson's lemma.
//
// Vectors are represented as []int64. All operations are pure: they allocate
// fresh result slices and never mutate their arguments unless documented.
package vec

import (
	"fmt"
	"strconv"
	"strings"
)

// V is an integer vector. The zero value is the empty (0-dimensional) vector.
type V []int64

// New returns a copy of xs as a vector.
func New(xs ...int64) V {
	v := make(V, len(xs))
	copy(v, xs)
	return v
}

// Zero returns the d-dimensional zero vector.
func Zero(d int) V { return make(V, d) }

// Const returns the d-dimensional vector with every component equal to c.
func Const(d int, c int64) V {
	v := make(V, d)
	for i := range v {
		v[i] = c
	}
	return v
}

// Unit returns the d-dimensional i-th standard basis vector e_i.
func Unit(d, i int) V {
	v := make(V, d)
	v[i] = 1
	return v
}

// Dim returns the dimension (number of components) of v.
func (v V) Dim() int { return len(v) }

// Clone returns a copy of v.
func (v V) Clone() V {
	w := make(V, len(v))
	copy(w, v)
	return w
}

// Add returns v + w. It panics if dimensions differ.
func (v V) Add(w V) V {
	mustSameDim(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w. It panics if dimensions differ.
func (v V) Sub(w V) V {
	mustSameDim(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns c*v.
func (v V) Scale(c int64) V {
	out := make(V, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// Dot returns the inner product v · w. It panics if dimensions differ.
func (v V) Dot(w V) int64 {
	mustSameDim(v, w)
	var s int64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Leq reports the pointwise order v ≤ w (every component of v is ≤ the
// corresponding component of w). It panics if dimensions differ.
func (v V) Leq(w V) bool {
	mustSameDim(v, w)
	for i := range v {
		if v[i] > w[i] {
			return false
		}
	}
	return true
}

// Geq reports w ≤ v pointwise.
func (v V) Geq(w V) bool { return w.Leq(v) }

// Less reports v ≤ w and v ≠ w (strict in at least one component).
func (v V) Less(w V) bool { return v.Leq(w) && !v.Eq(w) }

// Eq reports componentwise equality.
func (v V) Eq(w V) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every component is zero.
func (v V) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Nonnegative reports whether every component is ≥ 0, i.e. v ∈ N^d.
func (v V) Nonnegative() bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}

// Max returns the componentwise maximum of v and w (written v ∨ w in the
// paper). It panics if dimensions differ.
func (v V) Max(w V) V {
	mustSameDim(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = max(v[i], w[i])
	}
	return out
}

// Min returns the componentwise minimum of v and w.
func (v V) Min(w V) V {
	mustSameDim(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = min(v[i], w[i])
	}
	return out
}

// ClampSub returns (v - w)+ : the componentwise max(v[i]-w[i], 0).
func (v V) ClampSub(w V) V {
	mustSameDim(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = max(v[i]-w[i], 0)
	}
	return out
}

// With returns a copy of v with component i set to x.
func (v V) With(i int, x int64) V {
	w := v.Clone()
	w[i] = x
	return w
}

// Drop returns a copy of v with component i removed, reducing the dimension
// by one. Used when restricting a function to a fixed input.
func (v V) Drop(i int) V {
	w := make(V, 0, len(v)-1)
	w = append(w, v[:i]...)
	w = append(w, v[i+1:]...)
	return w
}

// Insert returns a copy of v with x inserted at position i, increasing the
// dimension by one.
func (v V) Insert(i int, x int64) V {
	w := make(V, 0, len(v)+1)
	w = append(w, v[:i]...)
	w = append(w, x)
	w = append(w, v[i:]...)
	return w
}

// Sum returns the sum of components (the L1 norm for nonnegative vectors).
func (v V) Sum() int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}

// MaxComponent returns the largest component of v, or 0 for empty v.
func (v V) MaxComponent() int64 {
	var m int64
	for i, x := range v {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// String renders v as "(a, b, c)".
func (v V) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", x)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Key returns a compact string usable as a map key. Distinct vectors of the
// same dimension have distinct keys.
func (v V) Key() string {
	b := make([]byte, 0, 4*len(v))
	for i, x := range v {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, x, 10)
	}
	return string(b)
}

// Hash64 returns a 64-bit hash of the components, suitable for hash-based
// interning of vectors of a fixed dimension. Each component is diffused with
// a splitmix64-style finalizer and folded in order-dependently, so
// permutations of the same multiset hash differently.
func (v V) Hash64() uint64 { return Hash64(v) }

// Hash64 hashes a raw count slice; see V.Hash64. It accepts []int64 so hot
// paths can hash arena rows without converting to V.
func Hash64(xs []int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15) ^ uint64(len(xs))
	for _, x := range xs {
		k := uint64(x)
		k *= 0xbf58476d1ce4e5b9
		k ^= k >> 31
		k *= 0x94d049bb133111eb
		h ^= k
		h = h*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	}
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// HashShard maps a Hash64 value to a shard index in [0, 1<<bits) using the
// top bits of the hash. Sharded interning tables select their shard with the
// top bits and probe within the shard with the low bits, so the two are
// independent and a shard's slots stay uniformly filled.
func HashShard(h uint64, bits uint) uint64 {
	if bits == 0 {
		return 0
	}
	return h >> (64 - bits)
}

func mustSameDim(v, w V) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(v), len(w)))
	}
}

// Mod returns the congruence class of v modulo p as the canonical
// representative with all components in [0, p). It panics if p ≤ 0.
func (v V) Mod(p int64) V {
	if p <= 0 {
		panic("vec: nonpositive period")
	}
	out := make(V, len(v))
	for i := range v {
		out[i] = ((v[i] % p) + p) % p
	}
	return out
}

// CongruenceIndex encodes the congruence class of v modulo p as a single
// integer in [0, p^d), using base-p positional encoding. It panics if p ≤ 0
// or if p^d overflows int64.
func CongruenceIndex(v V, p int64) int64 {
	if p <= 0 {
		panic("vec: nonpositive period")
	}
	var idx int64
	for i := range v {
		c := ((v[i] % p) + p) % p
		if idx > (1<<62)/p {
			panic("vec: congruence index overflow")
		}
		idx = idx*p + c
	}
	return idx
}

// CongruenceClass decodes the index produced by CongruenceIndex back into
// the canonical representative in [0,p)^d.
func CongruenceClass(idx, p int64, d int) V {
	v := make(V, d)
	for i := d - 1; i >= 0; i-- {
		v[i] = idx % p
		idx /= p
	}
	return v
}

// NumClasses returns p^d, the number of congruence classes of Z^d mod p.
// It panics on overflow.
func NumClasses(p int64, d int) int64 {
	n := int64(1)
	for i := 0; i < d; i++ {
		if n > (1<<62)/p {
			panic("vec: class count overflow")
		}
		n *= p
	}
	return n
}

// Lexicographic compares v and w lexicographically: -1 if v < w, 0 if equal,
// +1 if v > w. It panics if dimensions differ.
func Lexicographic(v, w V) int {
	mustSameDim(v, w)
	for i := range v {
		switch {
		case v[i] < w[i]:
			return -1
		case v[i] > w[i]:
			return 1
		}
	}
	return 0
}

// FindNondecreasingPair scans the sequence seq and returns indices (i, j)
// with i < j and seq[i] ≤ seq[j] pointwise, if any exist. Dickson's lemma
// guarantees such a pair exists in any infinite sequence over N^d; this
// helper finds one in a finite prefix. Returns (-1, -1) if none is present.
func FindNondecreasingPair(seq []V) (int, int) {
	for j := 1; j < len(seq); j++ {
		for i := 0; i < j; i++ {
			if seq[i].Leq(seq[j]) {
				return i, j
			}
		}
	}
	return -1, -1
}

// Grid enumerates all vectors x ∈ N^d with lo ≤ x ≤ hi pointwise, invoking
// fn on each. Enumeration is in lexicographic order. fn must not retain the
// vector across calls; it is reused. Returning false from fn stops early.
func Grid(lo, hi V, fn func(V) bool) {
	mustSameDim(lo, hi)
	d := len(lo)
	if d == 0 {
		fn(V{})
		return
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return
		}
	}
	cur := lo.Clone()
	for {
		if !fn(cur) {
			return
		}
		i := d - 1
		for i >= 0 {
			cur[i]++
			if cur[i] <= hi[i] {
				break
			}
			cur[i] = lo[i]
			i--
		}
		if i < 0 {
			return
		}
	}
}

// GridAll returns all vectors of the grid as a slice of fresh copies.
func GridAll(lo, hi V) []V {
	var out []V
	Grid(lo, hi, func(x V) bool {
		out = append(out, x.Clone())
		return true
	})
	return out
}
