package vec

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBasicArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  V
		want V
	}{
		{"add", New(1, 2, 3).Add(New(4, 5, 6)), New(5, 7, 9)},
		{"sub", New(4, 5, 6).Sub(New(1, 2, 3)), New(3, 3, 3)},
		{"scale", New(1, -2, 3).Scale(-2), New(-2, 4, -6)},
		{"max", New(1, 5).Max(New(3, 2)), New(3, 5)},
		{"min", New(1, 5).Min(New(3, 2)), New(1, 2)},
		{"clampsub", New(1, 5).ClampSub(New(3, 2)), New(0, 3)},
		{"unit", Unit(3, 1), New(0, 1, 0)},
		{"const", Const(2, 7), New(7, 7)},
		{"with", New(1, 2, 3).With(1, 9), New(1, 9, 3)},
		{"drop", New(1, 2, 3).Drop(1), New(1, 3)},
		{"insert", New(1, 3).Insert(1, 2), New(1, 2, 3)},
		{"mod", New(-1, 5, 7).Mod(3), New(2, 2, 1)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.got.Eq(tc.want) {
				t.Errorf("got %v, want %v", tc.got, tc.want)
			}
		})
	}
}

func TestDotAndOrder(t *testing.T) {
	if got := New(1, 2, 3).Dot(New(4, 5, 6)); got != 32 {
		t.Errorf("dot = %d, want 32", got)
	}
	if !New(1, 2).Leq(New(1, 3)) {
		t.Error("(1,2) ≤ (1,3) should hold")
	}
	if New(2, 2).Leq(New(1, 3)) {
		t.Error("(2,2) ≤ (1,3) should not hold")
	}
	if !New(1, 2).Less(New(1, 3)) {
		t.Error("(1,2) < (1,3) should hold")
	}
	if New(1, 2).Less(New(1, 2)) {
		t.Error("v < v should not hold")
	}
}

func TestCongruence(t *testing.T) {
	for _, p := range []int64{1, 2, 3, 5} {
		for d := 1; d <= 3; d++ {
			n := NumClasses(p, d)
			seen := make(map[int64]bool)
			Grid(Zero(d), Const(d, p-1), func(x V) bool {
				idx := CongruenceIndex(x, p)
				if idx < 0 || idx >= n {
					t.Fatalf("index %d out of range [0,%d)", idx, n)
				}
				if seen[idx] {
					t.Fatalf("duplicate index %d for %v", idx, x)
				}
				seen[idx] = true
				back := CongruenceClass(idx, p, d)
				if !back.Eq(x) {
					t.Fatalf("roundtrip %v -> %d -> %v", x, idx, back)
				}
				return true
			})
			if int64(len(seen)) != n {
				t.Fatalf("p=%d d=%d: saw %d classes, want %d", p, d, len(seen), n)
			}
		}
	}
}

func TestCongruenceIndexInvariantUnderShift(t *testing.T) {
	// Property: CongruenceIndex(x, p) == CongruenceIndex(x + p*z, p).
	err := quick.Check(func(a, b, c int8, za, zb, zc int8) bool {
		x := New(int64(a)&63, int64(b)&63, int64(c)&63)
		z := New(int64(za), int64(zb), int64(zc))
		p := int64(4)
		return CongruenceIndex(x, p) == CongruenceIndex(x.Add(z.Scale(p)), p)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestGridEnumeration(t *testing.T) {
	var count int
	Grid(New(0, 0), New(2, 3), func(x V) bool {
		count++
		return true
	})
	if count != 12 {
		t.Errorf("grid count = %d, want 12", count)
	}
	// Early stop.
	count = 0
	Grid(New(0, 0), New(2, 3), func(x V) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early-stop count = %d, want 5", count)
	}
	// Empty grid.
	count = 0
	Grid(New(1), New(0), func(x V) bool { count++; return true })
	if count != 0 {
		t.Errorf("empty grid visited %d points", count)
	}
	// 0-dimensional grid has exactly one point.
	count = 0
	Grid(V{}, V{}, func(x V) bool { count++; return true })
	if count != 1 {
		t.Errorf("0-dim grid visited %d points, want 1", count)
	}
}

func TestFindNondecreasingPair(t *testing.T) {
	// A strictly decreasing-in-one-coordinate sequence in N^2 must still
	// contain a nondecreasing pair once long enough (Dickson's lemma), but
	// short antichains exist.
	anti := []V{New(0, 2), New(1, 1), New(2, 0)}
	if i, j := FindNondecreasingPair(anti); i != -1 || j != -1 {
		t.Errorf("antichain produced pair (%d,%d)", i, j)
	}
	seq := []V{New(3, 0), New(2, 2), New(1, 1), New(2, 3)}
	i, j := FindNondecreasingPair(seq)
	if i == -1 {
		t.Fatal("no pair found")
	}
	if !seq[i].Leq(seq[j]) || i >= j {
		t.Errorf("invalid pair (%d,%d)", i, j)
	}
}

func TestDicksonRandomSequences(t *testing.T) {
	// Property: any 100-element sequence over [0,3]^2 has a nondecreasing
	// pair (max antichain size in {0..3}^2 under ≤ is 4).
	rng := rand.New(rand.NewPCG(42, 0))
	for trial := 0; trial < 50; trial++ {
		seq := make([]V, 100)
		for i := range seq {
			seq[i] = New(rng.Int64N(4), rng.Int64N(4))
		}
		if i, _ := FindNondecreasingPair(seq); i == -1 {
			t.Fatal("Dickson pair missing from long bounded sequence")
		}
	}
}

func TestKeyUniqueness(t *testing.T) {
	keys := make(map[string]V)
	Grid(New(0, 0), New(5, 5), func(x V) bool {
		k := x.Key()
		if prev, ok := keys[k]; ok {
			t.Fatalf("key collision: %v and %v -> %q", prev, x, k)
		}
		keys[k] = x.Clone()
		return true
	})
}

func TestStringFormat(t *testing.T) {
	if got := New(1, -2).String(); got != "(1, -2)" {
		t.Errorf("String = %q", got)
	}
}

func TestHashShard(t *testing.T) {
	// Shard selection uses the top bits, probe position the low bits: the
	// shard index must always be in range, 0 bits must collapse to shard 0,
	// and a spread of hashes must touch many shards (top bits avalanche).
	if HashShard(0xFFFFFFFFFFFFFFFF, 0) != 0 {
		t.Error("0 bits must map to shard 0")
	}
	const bits = 7
	seen := make(map[uint64]bool)
	for x := int64(0); x < 2000; x++ {
		h := Hash64([]int64{x, x ^ 3, -x})
		s := HashShard(h, bits)
		if s >= 1<<bits {
			t.Fatalf("shard %d out of range for %d bits", s, bits)
		}
		seen[s] = true
	}
	if len(seen) < (1<<bits)*3/4 {
		t.Errorf("2000 hashes hit only %d/%d shards — top bits poorly mixed", len(seen), 1<<bits)
	}
}
