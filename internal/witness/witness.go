// Package witness implements the impossibility tool of Section 4 of the
// paper. Lemma 4.1: if there is an increasing sequence (a_1, a_2, ...) in
// N^d such that for all i < j some Δ_ij ∈ N^d has
//
//	f(a_i + Δ_ij) − f(a_i) > f(a_j + Δ_ij) − f(a_j),
//
// then f is not obliviously-computable. The package searches for such
// contradiction sequences on bounded prefixes, and — reproducing Fig 6 —
// converts a contradiction into an explicit reaction trace that forces a
// concrete output-oblivious CRN to overproduce its output.
package witness

import (
	"fmt"
	"strings"

	"crncompose/internal/crn"
	"crncompose/internal/reach"
	"crncompose/internal/vec"
)

// Func is an integer-valued function on N^d.
type Func func(x vec.V) int64

// Contradiction is a finite prefix of a Lemma 4.1 contradiction sequence:
// K points a_i = Base + i·Step (i = 1..K, Step > 0 in at least one
// component) together with, for every pair i < j, a witness Δ_ij violating
// the "later inputs gain at least as much" condition.
type Contradiction struct {
	Base vec.V
	Step vec.V
	K    int
	// Delta[pairKey(i,j)] is Δ_ij (1-based i < j).
	Delta map[[2]int]vec.V
}

// Points returns a_1..a_K.
func (c *Contradiction) Points() []vec.V {
	out := make([]vec.V, c.K)
	for i := 1; i <= c.K; i++ {
		out[i-1] = c.Base.Add(c.Step.Scale(int64(i)))
	}
	return out
}

// Verify re-checks the defining inequality for every pair against f.
func (c *Contradiction) Verify(f Func) error {
	pts := c.Points()
	for i := 1; i <= c.K; i++ {
		for j := i + 1; j <= c.K; j++ {
			d, ok := c.Delta[[2]int{i, j}]
			if !ok {
				return fmt.Errorf("witness: missing Δ_%d%d", i, j)
			}
			ai, aj := pts[i-1], pts[j-1]
			lhs := f(ai.Add(d)) - f(ai)
			rhs := f(aj.Add(d)) - f(aj)
			if lhs <= rhs {
				return fmt.Errorf("witness: pair (%d,%d) with Δ=%v: %d ≤ %d", i, j, d, lhs, rhs)
			}
		}
	}
	return nil
}

// String summarizes the contradiction.
func (c *Contradiction) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Lemma 4.1 contradiction: a_i = %v + i·%v, i = 1..%d\n", c.Base, c.Step, c.K)
	for i := 1; i <= c.K; i++ {
		for j := i + 1; j <= c.K; j++ {
			if d, ok := c.Delta[[2]int{i, j}]; ok {
				fmt.Fprintf(&sb, "  Δ_{%d,%d} = %v\n", i, j, d)
			}
		}
	}
	return sb.String()
}

// SearchOptions bound the contradiction search.
type SearchOptions struct {
	// K is the sequence prefix length to certify (default 5).
	K int
	// BaseBound bounds each coordinate of the base point (default 2).
	BaseBound int64
	// DeltaBound bounds each coordinate of Δ candidates (default K+4).
	DeltaBound int64
}

func (o *SearchOptions) defaults() {
	if o.K == 0 {
		o.K = 5
	}
	if o.BaseBound == 0 {
		o.BaseBound = 2
	}
	if o.DeltaBound == 0 {
		o.DeltaBound = int64(o.K) + 4
	}
}

// Search looks for a contradiction sequence for f : N^d → N. It tries step
// directions from the nonzero 0/1 vectors, base points in [0, BaseBound]^d,
// and Δ candidates in [0, DeltaBound]^d. A non-nil result certifies the
// Lemma 4.1 inequality for all pairs i < j ≤ K; nil means no contradiction
// was found within the bounds (not a proof of computability).
func Search(f Func, d int, opts SearchOptions) *Contradiction {
	opts.defaults()
	var steps []vec.V
	vec.Grid(vec.Zero(d), vec.Const(d, 1), func(s vec.V) bool {
		if !s.IsZero() {
			steps = append(steps, s.Clone())
		}
		return true
	})
	var found *Contradiction
	vec.Grid(vec.Zero(d), vec.Const(d, opts.BaseBound), func(base vec.V) bool {
		for _, step := range steps {
			if c := tryCandidate(f, base.Clone(), step, opts); c != nil {
				found = c
				return false
			}
		}
		return true
	})
	return found
}

func tryCandidate(f Func, base, step vec.V, opts SearchOptions) *Contradiction {
	d := len(base)
	c := &Contradiction{Base: base, Step: step, K: opts.K, Delta: make(map[[2]int]vec.V)}
	pts := c.Points()
	for i := 1; i <= opts.K; i++ {
		for j := i + 1; j <= opts.K; j++ {
			ai, aj := pts[i-1], pts[j-1]
			fi, fj := f(ai), f(aj)
			var delta vec.V
			vec.Grid(vec.Zero(d), vec.Const(d, opts.DeltaBound), func(dd vec.V) bool {
				if f(ai.Add(dd))-fi > f(aj.Add(dd))-fj {
					delta = dd.Clone()
					return false
				}
				return true
			})
			if delta == nil {
				return nil
			}
			c.Delta[[2]int{i, j}] = delta
		}
	}
	return c
}

// Overproduction is an explicit reaction trace demonstrating Lemma 4.1's
// conclusion on a concrete CRN (Fig 6): starting from the initial
// configuration for input AjPlusDelta, the trace reaches a configuration
// whose output strictly exceeds f(AjPlusDelta); since the CRN is
// output-oblivious the excess can never be consumed, so the CRN cannot
// stably compute f.
type Overproduction struct {
	I, J        int   // the Dickson pair indices into the contradiction
	Ai, Aj      vec.V // a_i ≤ a_j with stable configs O_i ≤ O_j
	Delta       vec.V
	AjPlusDelta vec.V
	Want        int64 // f(a_j + Δ)
	Got         int64 // output produced by the trace (> Want)
	Trace       crn.Trace
}

// String summarizes the overproduction certificate.
func (o *Overproduction) String() string {
	return fmt.Sprintf(
		"overproduction: input %v should give %d but the schedule below yields %d\n(Dickson pair a_%d=%v ≤ a_%d=%v, Δ=%v)\n%s",
		o.AjPlusDelta, o.Want, o.Got, o.I, o.Ai, o.J, o.Aj, o.Delta, o.Trace)
}

// BuildOverproduction mechanizes the proof of Lemma 4.1 against a concrete
// output-oblivious CRN c claimed to stably compute f. It:
//
//  1. for each a_i, finds a stable configuration O_i with output f(a_i)
//     (via exhaustive reachability);
//  2. finds i < j with O_i ≤ O_j (guaranteed for long sequences by
//     Dickson's lemma);
//  3. runs the same reaction sequence from I_{a_i+Δ} = I_{a_i} + D reaching
//     C_i = O_i + D, extends it by a sequence α producing the additional
//     f(a_i+Δ) − f(a_i) outputs;
//  4. replays the O_j-trace plus α from I_{a_j+Δ} (applicable since
//     C_i ≤ C_j), overproducing output.
//
// It returns an error if c is not output-oblivious, if exploration budgets
// are exceeded, or if no Dickson pair exists within the contradiction
// prefix.
func BuildOverproduction(c *crn.CRN, f Func, con *Contradiction, opts ...reach.Option) (*Overproduction, error) {
	if !c.IsOutputOblivious() {
		return nil, fmt.Errorf("witness: CRN is not output-oblivious")
	}
	pts := con.Points()
	// 1. Stable configurations O_i and the traces reaching them.
	type stableInfo struct {
		cfg   crn.Config
		trace crn.Trace
	}
	stables := make([]stableInfo, len(pts))
	for idx, a := range pts {
		root, err := c.InitialConfig(a)
		if err != nil {
			return nil, err
		}
		g := reach.Explore(root, opts...)
		if !g.Complete {
			return nil, fmt.Errorf("witness: exploration from %v incomplete", a)
		}
		found := false
		for _, id := range g.StableIDs() {
			if g.Output(id) == f(a) {
				// Clone so the stable config doesn't pin the whole arena.
				stables[idx] = stableInfo{cfg: g.Config(id).Clone(), trace: g.TraceTo(id)}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("witness: no stable configuration with output f(%v)=%d; CRN does not stably compute f", a, f(a))
		}
	}
	// 2. Dickson pair on the O_i count vectors.
	counts := make([]vec.V, len(stables))
	for i, s := range stables {
		counts[i] = s.cfg.Counts()
	}
	pi, pj := vec.FindNondecreasingPair(counts)
	if pi < 0 {
		return nil, fmt.Errorf("witness: no Dickson pair among %d stable configurations; increase the contradiction prefix K", len(stables))
	}
	i, j := pi+1, pj+1 // 1-based
	delta, ok := con.Delta[[2]int{i, j}]
	if !ok {
		return nil, fmt.Errorf("witness: contradiction lacks Δ_{%d,%d}", i, j)
	}
	ai, aj := pts[pi], pts[pj]

	// 3. C_i = O_i + D where D = I_{a_i+Δ} − I_{a_i} (the extra inputs).
	ci, err := stables[pi].trace.ReplayFrom(c.MustInitialConfig(ai.Add(delta)))
	if err != nil {
		return nil, fmt.Errorf("witness: replaying O_i trace with extra inputs: %w", err)
	}
	// α: from C_i, reach output f(a_i + Δ).
	targetY := f(ai.Add(delta))
	gi := reach.Explore(ci, opts...)
	if !gi.Complete {
		return nil, fmt.Errorf("witness: exploration from C_i incomplete")
	}
	var alpha []int
	foundAlpha := false
	for id := int32(0); id < int32(gi.NumConfigs()); id++ {
		if gi.Output(id) == targetY {
			alpha = gi.TraceTo(id).Reactions
			foundAlpha = true
			break
		}
	}
	if !foundAlpha {
		return nil, fmt.Errorf("witness: cannot produce %d outputs from C_i; CRN does not stably compute f(%v)", targetY, ai.Add(delta))
	}

	// 4. Replay O_j's trace from I_{a_j+Δ}, then α (applicable since
	// C_i ≤ C_j componentwise).
	full := crn.Trace{
		Start:     c.MustInitialConfig(aj.Add(delta)),
		Reactions: append(append([]int(nil), stables[pj].trace.Reactions...), alpha...),
	}
	final, err := full.Replay()
	if err != nil {
		return nil, fmt.Errorf("witness: overproduction trace not applicable (C_i ≰ C_j?): %w", err)
	}
	want := f(aj.Add(delta))
	if final.Output() <= want {
		return nil, fmt.Errorf("witness: trace produced %d ≤ f(%v) = %d; no overproduction", final.Output(), aj.Add(delta), want)
	}
	return &Overproduction{
		I: i, J: j, Ai: ai, Aj: aj,
		Delta:       delta,
		AjPlusDelta: aj.Add(delta),
		Want:        want,
		Got:         final.Output(),
		Trace:       full,
	}, nil
}
