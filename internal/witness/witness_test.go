package witness

import (
	"strings"
	"testing"

	"crncompose/internal/crn"
	"crncompose/internal/vec"
)

func fmax(x vec.V) int64 { return max(x[0], x[1]) }
func fmin(x vec.V) int64 { return min(x[0], x[1]) }

func TestSearchFindsMaxContradiction(t *testing.T) {
	c := Search(fmax, 2, SearchOptions{})
	if c == nil {
		t.Fatal("no contradiction found for max")
	}
	if err := c.Verify(fmax); err != nil {
		t.Fatal(err)
	}
}

func TestSearchFindsEquation2Contradiction(t *testing.T) {
	f := func(x vec.V) int64 {
		if x[0] == x[1] {
			return x[0] + x[1]
		}
		return x[0] + x[1] + 1
	}
	c := Search(f, 2, SearchOptions{})
	if c == nil {
		t.Fatal("no contradiction found for equation (2)")
	}
	if err := c.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestSearchCleanOnComputableFunctions(t *testing.T) {
	evals := map[string]Func{
		"min":      fmin,
		"sum":      func(x vec.V) int64 { return x[0] + x[1] },
		"double":   func(x vec.V) int64 { return 2 * x[0] },
		"floor3x2": func(x vec.V) int64 { return 3 * x[0] / 2 },
	}
	dims := map[string]int{"min": 2, "sum": 2, "double": 1, "floor3x2": 1}
	for name, f := range evals {
		if c := Search(f, dims[name], SearchOptions{K: 4, BaseBound: 1, DeltaBound: 6}); c != nil {
			t.Errorf("%s: spurious contradiction %s", name, c)
		}
	}
}

func TestVerifyRejectsBogus(t *testing.T) {
	c := &Contradiction{
		Base: vec.New(0, 0), Step: vec.New(1, 0), K: 2,
		Delta: map[[2]int]vec.V{{1, 2}: vec.New(0, 0)},
	}
	if err := c.Verify(fmin); err == nil {
		t.Fatal("bogus contradiction verified against min")
	}
}

func TestContradictionString(t *testing.T) {
	c := Search(fmax, 2, SearchOptions{K: 3})
	if c == nil {
		t.Fatal("no contradiction")
	}
	s := c.String()
	if !strings.Contains(s, "Lemma 4.1") || !strings.Contains(s, "Δ") {
		t.Errorf("String = %q", s)
	}
}

// naiveMaxOblivious is the "broken" output-oblivious attempt at max:
// just the producing half of the Fig 1 max CRN. It does NOT stably compute
// max (it computes x1 + x2); used to exercise BuildOverproduction's
// failure path detection.
func naiveMaxOblivious() *crn.CRN {
	return crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
}

// obliviousMinPlusHalfSum computes min but claimed as max for the Fig 6
// overproduction experiment: the CRN is output-oblivious and stably
// computes the WRONG values for max on asymmetric inputs, so
// BuildOverproduction must fail with "does not stably compute".
func TestBuildOverproductionDetectsNonComputingCRN(t *testing.T) {
	c := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	con := Search(fmax, 2, SearchOptions{})
	if con == nil {
		t.Fatal("no contradiction")
	}
	if _, err := BuildOverproduction(c, fmax, con); err == nil {
		t.Fatal("min CRN accepted as computing max")
	}
}

func TestBuildOverproductionRejectsNonOblivious(t *testing.T) {
	c := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "Y"}}, Products: nil},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}},
	})
	con := Search(fmax, 2, SearchOptions{})
	if _, err := BuildOverproduction(c, fmax, con); err == nil || !strings.Contains(err.Error(), "oblivious") {
		t.Fatalf("err = %v", err)
	}
}

// TestFig6Overproduction reproduces Figure 6 end-to-end: an adversary
// claims the (x1+x2)-producing CRN obliviously computes some function f
// that agrees with it on the witness sequence a_i = (i, 0) — i.e.
// f(x1, 0) = x1 — but is max elsewhere. Since f = max satisfies
// f(a_i) = sums on the a_i axis, the Lemma 4.1 machinery drives the CRN
// into overproducing relative to max... except the CRN doesn't stably
// compute max at all. The honest end-to-end demonstration instead uses a
// function the CRN DOES compute on the sequence: we build the
// overproduction trace against the sum-CRN with the function
// f(x) = x1 + x2 − min(x1, x2, 1)·0 — i.e. f = sum, which has no
// contradiction. The real theorem-level experiment lives in
// TestFig6AgainstHonestObliviousAttempt below.
func TestFig6AgainstHonestObliviousAttempt(t *testing.T) {
	// The honest oblivious attempt at max from Section 1.2's discussion:
	// produce Y for each input seen (X1 → Y, X2 → Y) and try to "hold
	// back" the min: X1 + X2 → Y (pair first). CRN:
	//   X1 + X2 → Y ; X1 → Y ; X2 → Y
	// does stably compute max on inputs where one side is 0 — f(i,0) = i —
	// but on (i,j) it can produce anywhere up to i+j, and crucially it CAN
	// reach exactly max(i,j) by pairing min(i,j) times. So for small inputs
	// it "computes" max under angelic scheduling but admits overproducing
	// schedules, which is exactly what Lemma 4.1 predicts and
	// BuildOverproduction must exhibit.
	c := crn.MustNew([]crn.Species{"X1", "X2"}, "Y", "", []crn.Reaction{
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}, {Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}, Name: "pair"},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X1"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}, Name: "solo1"},
		{Reactants: []crn.Term{{Coeff: 1, Sp: "X2"}}, Products: []crn.Term{{Coeff: 1, Sp: "Y"}}, Name: "solo2"},
	})
	if !c.IsOutputOblivious() {
		t.Fatal("attempt must be output-oblivious")
	}
	con := Search(fmax, 2, SearchOptions{})
	if con == nil {
		t.Fatal("no contradiction for max")
	}
	over, err := BuildOverproduction(c, fmax, con)
	if err != nil {
		t.Fatalf("overproduction construction failed: %v", err)
	}
	if over.Got <= over.Want {
		t.Fatalf("no overshoot: got %d want > %d", over.Got, over.Want)
	}
	// The trace must replay exactly.
	final, err := over.Trace.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if final.Output() != over.Got {
		t.Errorf("trace output %d ≠ reported %d", final.Output(), over.Got)
	}
	t.Logf("Fig 6 reproduced: input %v, correct max = %d, adversarial schedule yields %d",
		over.AjPlusDelta, over.Want, over.Got)
}
